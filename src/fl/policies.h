// Pluggable server policies for the event-driven fl::Engine: who trains
// toward each server version (ParticipationPolicy), how many buffered
// updates trigger an aggregation (BufferPolicy), how long each local
// training task takes on the virtual timeline (ClockPolicy), and how each
// upload travels the wire (WirePolicy: dense / quantized / top-k / delta
// encodings with byte-true costs).
//
// Determinism contract (what makes Engine runs bit-identical at any thread
// count): every schedule-side policy is consulted only while the Engine
// builds its event schedule — before any training runs — and must be a pure
// function of its arguments plus construction-time state. Policies must not
// read wall-clock time, thread ids, or training results; stateful policies
// (AdaptiveBuffer) may only depend on the sequence of calls the schedule
// builder makes, which is itself deterministic. WirePolicy runs during
// execution (it encodes trained parameters), but is a pure function of its
// inputs and its *byte count* is a pure function of parameter shapes, so
// schedules built from upload sizes stay training-independent.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace goldfish::fl {

/// Decides whether a client trains toward a given server version. Consulted
/// whenever a client is free: at run start, after each of its completions,
/// and again for parked clients whenever the server version advances.
class ParticipationPolicy {
 public:
  virtual ~ParticipationPolicy() = default;

  /// Does `client` start a local-training task toward server `version` at
  /// virtual time `time`? Must answer identically for identical arguments.
  virtual bool participates(std::size_t client, long version,
                            double time) = 0;

  /// When a refused client should ask again without waiting for the version
  /// to change: the next virtual time (> `time`) at which participates()
  /// may flip to true, or a negative value when only a version change can
  /// re-admit the client (the Engine re-checks every parked client after
  /// each aggregation regardless).
  virtual double retry_at(std::size_t client, long version, double time) {
    (void)client;
    (void)version;
    (void)time;
    return -1.0;
  }

  /// Population-scale seam: a policy that can ENUMERATE each version's
  /// cohort lets the Engine visit only cohort members (O(cohort) per
  /// version) instead of asking participates() for every registered client
  /// (O(population)). Policies answering true here must keep cohort() and
  /// participates() consistent: participates(c, v, t) == (c ∈ cohort(v, n)),
  /// independent of time.
  virtual bool enumerates_cohort() const { return false; }

  /// The ascending client-id cohort for server `version` out of
  /// `num_clients` registered clients. Only meaningful when
  /// enumerates_cohort(); the default throws.
  virtual const std::vector<std::size_t>& cohort(long version,
                                                std::size_t num_clients);

  virtual std::string name() const = 0;
};

/// Every client trains continuously — the legacy run_round / run_async
/// behaviour.
class FullParticipation final : public ParticipationPolicy {
 public:
  bool participates(std::size_t, long, double) override { return true; }
  std::string name() const override { return "full"; }
};

/// Seeded uniform sampling per server version: client c is in version v's
/// cohort with probability `fraction`, decided by a single draw from the
/// collision-free mix_seed(seed, c, v) stream. Independent of time, event
/// order, and thread count, so sampled runs are bit-reproducible.
///
/// Progress note: a version whose cohort happens to be empty cannot stall
/// the server — when nothing is in flight and the buffer cannot fill, the
/// Engine re-admits every parked client at that instant (documented in
/// src/fl/README.md).
class SampledParticipation final : public ParticipationPolicy {
 public:
  SampledParticipation(double fraction, std::uint64_t seed);

  bool participates(std::size_t client, long version, double time) override;
  std::string name() const override { return "sampled"; }

 private:
  double fraction_;
  std::uint64_t seed_;
};

/// Periodic per-client availability windows in virtual time: client c is
/// available while fmod(time + c·phase, period) < on_fraction·period —
/// a crude model of devices that are only reachable while charging/idle.
/// Refusals schedule a wake inside the client's next window (at its
/// midpoint, which is robust to floating-point boundary rounding).
class AvailabilityWindows final : public ParticipationPolicy {
 public:
  /// `period` > 0; `on_fraction` in (0, 1]; `phase` staggers clients so the
  /// federation is never synchronously offline.
  AvailabilityWindows(double period, double on_fraction, double phase);

  bool participates(std::size_t client, long version, double time) override;
  double retry_at(std::size_t client, long version, double time) override;
  std::string name() const override { return "windows"; }

 private:
  double period_;
  double on_;  // on_fraction · period
  double phase_;
};

/// Fixed-size seeded cohorts, enumerable without touching non-members: each
/// server version v gets exactly min(cohort_size, n) distinct clients,
/// rejection-sampled from the collision-free mix_seed(seed ⊕ salt, v, draw)
/// stream and kept sorted. This is the population-scale counterpart of
/// SampledParticipation — participates() is a binary search over the
/// version's cohort, and the Engine's schedule builder iterates cohort()
/// directly so scheduling work per version is O(cohort · log cohort), never
/// O(population). Joins become samplable at the next version bump (the
/// cohort for a version is pinned when first drawn, against the client
/// count at that moment).
class CohortParticipation final : public ParticipationPolicy {
 public:
  CohortParticipation(std::size_t cohort_size, std::uint64_t seed);

  bool participates(std::size_t client, long version, double time) override;
  bool enumerates_cohort() const override { return true; }
  const std::vector<std::size_t>& cohort(long version,
                                         std::size_t num_clients) override;
  std::string name() const override { return "cohort"; }

 private:
  std::size_t cohort_size_;
  std::uint64_t seed_;
  long cached_version_ = -1;
  std::size_t cached_n_ = 0;
  std::vector<std::size_t> cohort_;  // ascending client ids
};

/// Decides the buffer size K for each aggregation. Called once per
/// aggregation index, in order, while the schedule is built.
class BufferPolicy {
 public:
  virtual ~BufferPolicy() = default;

  /// K for aggregation `agg` (0-based). `prev_mean_staleness` and
  /// `prev_max_staleness` describe the updates consumed by aggregation
  /// agg−1 (both 0 for agg 0); `active_clients` is the current federation
  /// size after joins/leaves. Must return ≥ 1 (the Engine clamps).
  virtual long size(long agg, double prev_mean_staleness,
                    long prev_max_staleness, std::size_t active_clients) = 0;

  virtual std::string name() const = 0;
};

/// Fixed K; 0 means "all currently active clients" (the synchronous round).
class FixedBuffer final : public BufferPolicy {
 public:
  explicit FixedBuffer(long k) : k_(k) {}

  long size(long, double, long, std::size_t active_clients) override {
    return k_ > 0 ? k_ : static_cast<long>(active_clients);
  }
  std::string name() const override { return "fixed"; }

 private:
  long k_;
};

/// Adaptive K(t) driven by observed staleness: when the previous buffer
/// consumed an update more than `target_max_staleness` versions stale, grow
/// K by one (fewer version bumps per unit time → less lag for stragglers);
/// when every consumed update was fresh, shrink K by one (aggregate more
/// often → faster model refresh). K stays within [min_size, max_size].
class AdaptiveBuffer final : public BufferPolicy {
 public:
  AdaptiveBuffer(long initial, long min_size, long max_size,
                 long target_max_staleness = 1);

  long size(long agg, double prev_mean_staleness, long prev_max_staleness,
            std::size_t active_clients) override;
  std::string name() const override { return "adaptive"; }

  long current() const { return k_; }

 private:
  long k_;
  long min_;
  long max_;
  long target_;
};

/// Supplies the virtual duration of each local-training task. `index` is the
/// client's per-run task sequence number (its RNG stream step).
class ClockPolicy {
 public:
  virtual ~ClockPolicy() = default;

  /// Duration (> 0) of client `client`'s `index`-th task. Pure function of
  /// its arguments and construction-time state.
  virtual double duration(std::size_t client, long index) = 0;

  /// The byte-true size of one encoded upload under the scenario's
  /// WirePolicy, announced by the Engine once per run before the schedule is
  /// built (encoded size depends only on parameter shapes, never values, so
  /// consuming it keeps Phase A deterministic). Bandwidth-aware clocks use
  /// it to turn payload size into transfer time; the default ignores it.
  virtual void set_upload_bytes(std::size_t bytes) { (void)bytes; }

  virtual std::string name() const = 0;
};

/// The deterministic virtual clock (the legacy run_async behaviour):
/// duration = mean · exp(log_jitter · N(0,1)), drawn from the seeded
/// per-(client, task) stream mix_seed(seed ^ salt, client, index). With
/// log_jitter = 0 every task takes exactly `mean`, which reproduces the
/// synchronous schedule.
class VirtualClock final : public ClockPolicy {
 public:
  VirtualClock(std::uint64_t seed, double mean, double log_jitter);

  double duration(std::size_t client, long index) override;
  std::string name() const override { return "virtual"; }

 private:
  std::uint64_t seed_;
  double mean_;
  double jitter_;
};

/// Wall-clock replay: per-client measured task durations (e.g. recorded
/// from a real deployment trace), replayed cyclically — task `index` of
/// client c takes traces[c % traces.size()][index % trace.size()]. The
/// timeline stays virtual (and therefore thread-count independent); only
/// the durations come from measurements.
class TraceClock final : public ClockPolicy {
 public:
  explicit TraceClock(std::vector<std::vector<double>> traces);

  double duration(std::size_t client, long index) override;
  std::string name() const override { return "trace"; }

 private:
  std::vector<std::vector<double>> traces_;
};

/// Bandwidth-aware clock: task duration = the inner clock's compute time +
/// upload_bytes / the client's link bandwidth. Each client's bandwidth is
/// drawn once from the seeded log-normal stream mean·exp(spread·N(0,1)), so
/// slow links are *persistent* stragglers — and because the upload size
/// comes from the scenario's WirePolicy, straggling emerges from payload
/// size (a quantized upload is ~4x faster to ship than a dense one) instead
/// of purely synthetic jitter.
class BandwidthClock final : public ClockPolicy {
 public:
  /// `compute` supplies the local-training time (non-null, must not itself
  /// need upload bytes redirected — it receives set_upload_bytes too, which
  /// is a no-op for the stock clocks); `mean_bandwidth` is bytes per virtual
  /// time unit (> 0); `log_spread` >= 0 (0 → every client gets exactly the
  /// mean link).
  BandwidthClock(std::unique_ptr<ClockPolicy> compute, double mean_bandwidth,
                 double log_spread, std::uint64_t seed);

  void set_upload_bytes(std::size_t bytes) override;
  double duration(std::size_t client, long index) override;
  std::string name() const override { return "bandwidth+" + compute_->name(); }

  /// Client c's link bandwidth (bytes per virtual time unit); a pure seeded
  /// function, exposed for tests.
  double bandwidth(std::size_t client) const;

 private:
  std::unique_ptr<ClockPolicy> compute_;
  double mean_;
  double spread_;
  std::uint64_t seed_;
  std::size_t bytes_ = 0;
};

/// How a client's trained parameters travel to the server: each upload is
/// encoded to actual bytes (the count the telemetry and bandwidth clocks
/// see) and decoded server-side before aggregation. Encoders may be lossy —
/// that is the accuracy-vs-bytes axis — but must be pure functions of their
/// inputs, and their byte count must depend only on parameter *shapes* (so
/// Phase A can price uploads before training runs). Wire formats are
/// specified byte-for-byte in docs/wire-format.md.
class WirePolicy {
 public:
  virtual ~WirePolicy() = default;

  /// Encode `params` into `out` (cleared first, capacity reused across
  /// calls). `reference` is the snapshot of the server version this client
  /// downloaded — the broadcast both ends already share; null when the
  /// encoder does not need one (needs_reference() == false) or, for tests,
  /// to encode against an all-zero reference.
  virtual void encode(const std::vector<Tensor>& params,
                      const std::vector<Tensor>* reference,
                      std::string& out) const = 0;

  /// Decode a buffer produced by encode() with the same `reference`.
  /// Throws on malformed or truncated input.
  virtual std::vector<Tensor> decode(
      const char* data, std::size_t size,
      const std::vector<Tensor>* reference) const = 0;

  /// Byte-true size of one encoded upload for parameters shaped like
  /// `like` — a pure function of shapes, equal to what encode() will
  /// produce. Feeds ClockPolicy::set_upload_bytes.
  virtual std::size_t encoded_bytes(const std::vector<Tensor>& like) const = 0;

  /// True when decode(encode(p)) == p bit-for-bit (the engine skips the
  /// reconstruction-error measurement for lossless wires).
  virtual bool lossless() const { return false; }

  /// True when encode/decode consume the reference snapshot; the engine then
  /// keeps the downloaded version's parameters alive through the task's wire
  /// round-trip.
  virtual bool needs_reference() const { return false; }

  virtual std::string name() const = 0;
};

/// Today's behaviour, byte-true: the GFT1 dense framing of
/// tensor/serialize.h, bit-exact on decode. The default when a Scenario
/// sets no wire policy — runs are bit-identical to the pre-WirePolicy
/// engine.
class DenseWire final : public WirePolicy {
 public:
  void encode(const std::vector<Tensor>& params,
              const std::vector<Tensor>* reference,
              std::string& out) const override;
  std::vector<Tensor> decode(const char* data, std::size_t size,
                             const std::vector<Tensor>* reference)
      const override;
  std::size_t encoded_bytes(const std::vector<Tensor>& like) const override;
  bool lossless() const override { return true; }
  std::string name() const override { return "dense"; }
};

/// Int8 per-tensor affine quantization (the "GFQ1" record): ~4x smaller
/// than dense, max per-element error of half a quantization step
/// (range/510), deterministic round-half-away encoding.
class QuantizedWire final : public WirePolicy {
 public:
  void encode(const std::vector<Tensor>& params,
              const std::vector<Tensor>* reference,
              std::string& out) const override;
  std::vector<Tensor> decode(const char* data, std::size_t size,
                             const std::vector<Tensor>* reference)
      const override;
  std::size_t encoded_bytes(const std::vector<Tensor>& like) const override;
  std::string name() const override { return "quantized"; }
};

/// Top-k magnitude sparsification (the "GFK1" record): per tensor, keep the
/// ceil(fraction·numel) entries of largest magnitude as (index, value)
/// pairs; everything else decodes to zero. 8 bytes per kept entry, so
/// fraction 0.25 halves the dense payload and 0.1 cuts it 5x.
class TopKWire final : public WirePolicy {
 public:
  /// `fraction` ∈ (0, 1]: the per-tensor fraction of entries kept.
  explicit TopKWire(double fraction);

  void encode(const std::vector<Tensor>& params,
              const std::vector<Tensor>* reference,
              std::string& out) const override;
  std::vector<Tensor> decode(const char* data, std::size_t size,
                             const std::vector<Tensor>* reference)
      const override;
  std::size_t encoded_bytes(const std::vector<Tensor>& like) const override;
  std::string name() const override { return "topk"; }

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

/// Delta encoding vs the client's last broadcast (the "GFD1" record): what
/// travels is inner.encode(params − reference), and the server adds the
/// reference back after inner decode — both ends already hold the broadcast
/// version, so the delta itself never costs extra bytes. Composes with the
/// other encoders (quantizing or sparsifying a delta is far gentler than
/// doing so to raw weights, because post-training deltas have a much
/// smaller dynamic range). A null reference encodes against zeros.
class DeltaWire final : public WirePolicy {
 public:
  /// `inner` encodes the delta itself; null → DenseWire (exact deltas). The
  /// inner wire must not itself need a reference.
  explicit DeltaWire(std::unique_ptr<WirePolicy> inner = nullptr);

  void encode(const std::vector<Tensor>& params,
              const std::vector<Tensor>* reference,
              std::string& out) const override;
  std::vector<Tensor> decode(const char* data, std::size_t size,
                             const std::vector<Tensor>* reference)
      const override;
  std::size_t encoded_bytes(const std::vector<Tensor>& like) const override;
  bool needs_reference() const override { return true; }
  std::string name() const override { return "delta+" + inner_->name(); }

 private:
  std::unique_ptr<WirePolicy> inner_;
};

}  // namespace goldfish::fl
