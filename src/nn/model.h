// Model: the unit the FL and unlearning layers operate on.
//
// A Model owns a root layer (usually Sequential) plus metadata and the
// Workspace arena all of its layers write activations into, and exposes the
// whole-model operations the paper's algorithms need: parameter
// snapshot/restore (ω in Algorithm 1), in-place parameter copy (the
// broadcast primitive of the pooled FL round), gradient reset, cloning
// (teacher ← global model), and parameter-space arithmetic used by shard
// aggregation (Eq. 8–10) and server aggregation (Eq. 13).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/workspace.h"
#include "tensor/annotations.h"

namespace goldfish::nn {

class Model {
 public:
  Model() = default;
  Model(std::string arch_name, std::unique_ptr<Layer> root, long num_classes);

  Model(const Model& other);
  Model& operator=(const Model& other);
  // The Workspace lives behind a unique_ptr, so moves keep every layer's
  // binding valid without re-attaching.
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  bool valid() const { return root_ != nullptr; }
  const std::string& arch_name() const { return arch_name_; }
  long num_classes() const { return num_classes_; }

  /// Forward pass producing logits (N, num_classes). The result references
  /// a workspace slot: valid until this model's next forward.
  const Tensor& forward(const Tensor& x, bool train = true) {
    return root_->forward(x, train);
  }

  /// Backpropagate a logit gradient; accumulates parameter gradients. The
  /// result references a workspace slot: valid until the next backward.
  const Tensor& backward(const Tensor& grad_logits) {
    return root_->backward(grad_logits);
  }

  /// All parameters (including batch-norm running stats, whose grad is null).
  std::vector<ParamRef> params() { return root_->params(); }

  /// Read-only parameter views, usable on a const model (what the FL layer's
  /// architecture checks and snapshot paths use).
  std::vector<ConstParamRef> params() const { return root_->const_params(); }

  /// Zero every gradient accumulator.
  void zero_grad();

  /// Number of scalar parameters (trainable + running stats).
  std::size_t num_scalars() const;

  /// Value snapshot of every parameter tensor, in params() order. This is
  /// the ω that travels between client and server.
  std::vector<Tensor> snapshot() const;

  /// Restore parameter values from a snapshot of matching structure.
  void load(const std::vector<Tensor>& values);

  /// In-place broadcast: copy `other`'s parameter values (running stats
  /// included) into this model's existing storage and zero the gradient
  /// accumulators — the allocation-free equivalent of `*this = other` for
  /// structurally identical models (the FL client pool's per-round reset).
  void copy_from(const Model& other);

 private:
  std::string arch_name_;
  std::unique_ptr<Layer> root_;
  long num_classes_ = 0;
  std::unique_ptr<Workspace> ws_;  // activation arena shared by all layers

  void attach();  // (re)bind root_ and children to ws_
};

// -- parameter-space arithmetic over snapshots -----------------------------
// Snapshots are plain vector<Tensor>; these helpers implement the weighted
// sums the paper writes as Σ (|D_i|/|D|)·ω_i.

/// result += scale · delta (elementwise across the whole snapshot).
GOLDFISH_HOT void axpy(std::vector<Tensor>& result,
                       const std::vector<Tensor>& delta, float scale);

/// Weighted average of *borrowed* snapshots; weights need not be
/// normalized. Accumulates in place into freshly sized output tensors — no
/// snapshot is copied, which is what keeps server aggregation from cloning
/// the whole federation's parameters every round.
GOLDFISH_HOT std::vector<Tensor> weighted_average(
    const std::vector<const std::vector<Tensor>*>& snaps,
    const std::vector<float>& weights);

/// Owning-container convenience overload (shard aggregation, tests); same
/// arithmetic, bit-identical result.
std::vector<Tensor> weighted_average(
    const std::vector<std::vector<Tensor>>& snaps,
    const std::vector<float>& weights);

/// Squared L2 distance between two snapshots (model-space metric used in
/// tests and the B2 baseline's trust region).
float snapshot_distance_sq(const std::vector<Tensor>& a,
                           const std::vector<Tensor>& b);

}  // namespace goldfish::nn
