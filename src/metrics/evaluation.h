// Model evaluation: accuracy, backdoor attack success rate, MSE — the
// quantities every table in the paper reports.
#pragma once

#include "data/dataset.h"
#include "nn/model.h"

namespace goldfish::metrics {

/// Classification accuracy (%) of a model over a dataset, evaluated in
/// batches (eval mode, running batch-norm stats).
double accuracy(nn::Model& model, const data::Dataset& ds,
                long batch_size = 256);

/// Backdoor attack success rate (%): fraction of a trigger-probe set
/// classified as the attacker's target label. The probe set already carries
/// the target label on every row, so this is accuracy on the probe.
double attack_success_rate(nn::Model& model, const data::Dataset& probe,
                           long batch_size = 256);

/// Mean squared error between the model's softmax outputs and one-hot
/// labels — the "me" quantity of the adaptive-weight mechanism (Eq. 12).
double mse(nn::Model& model, const data::Dataset& ds, long batch_size = 256);

/// Mean softmax output of a model over a dataset (one probability vector),
/// the distribution compared by JSD/L2 in Tables VII–IX.
std::vector<double> mean_prediction(nn::Model& model, const data::Dataset& ds,
                                    long batch_size = 256);

/// Per-sample max-confidence values (input to the t-test of Tables VII–IX).
std::vector<double> confidence_series(nn::Model& model,
                                      const data::Dataset& ds,
                                      long batch_size = 256);

}  // namespace goldfish::metrics
