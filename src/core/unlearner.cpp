#include "core/unlearner.h"

#include <atomic>

#include "metrics/evaluation.h"
#include "tensor/serialize.h"

namespace goldfish::core {

GoldfishUnlearner::GoldfishUnlearner(nn::Model global, nn::Model fresh_init,
                                     std::vector<data::Dataset> client_data,
                                     data::Dataset server_test,
                                     UnlearnConfig cfg)
    : teacher_(std::move(global)),
      global_(std::move(fresh_init)),
      remaining_(std::move(client_data)),
      test_(std::move(server_test)),
      cfg_(std::move(cfg)),
      aggregator_(fl::make_aggregator(cfg_.aggregator)),
      sched_(&runtime::scheduler_for(cfg_.threads, owned_sched_)) {
  GOLDFISH_CHECK(!remaining_.empty(), "unlearner needs clients");
  removed_.resize(remaining_.size());
}

DeletionSplit split_deletion(const data::Dataset& local,
                             const UnlearnRequest& req) {
  std::vector<bool> is_removed(static_cast<std::size_t>(local.size()), false);
  for (std::size_t r : req.rows) {
    GOLDFISH_CHECK(r < static_cast<std::size_t>(local.size()),
                   "deletion row out of range");
    is_removed[r] = true;
  }
  std::vector<std::size_t> keep, drop;
  for (std::size_t i = 0; i < is_removed.size(); ++i)
    (is_removed[i] ? drop : keep).push_back(i);
  GOLDFISH_CHECK(!keep.empty(), "client would have no remaining data");
  return {local.subset(keep), local.subset(drop)};
}

AsyncDeletionPlan make_async_deletion(const fl::FederatedSim& sim,
                                      const UnlearnRequest& req,
                                      double vtime) {
  GOLDFISH_CHECK(req.client_id < sim.num_clients(),
                 "deletion request for unknown client");
  DeletionSplit split = split_deletion(sim.client_data(req.client_id), req);
  AsyncDeletionPlan plan;
  plan.event.time = vtime;
  plan.event.client = req.client_id;
  plan.event.new_data = std::move(split.remaining);
  plan.removed = std::move(split.removed);
  return plan;
}

void GoldfishUnlearner::request_deletion(
    const std::vector<UnlearnRequest>& requests) {
  for (const UnlearnRequest& req : requests) {
    GOLDFISH_CHECK(req.client_id < remaining_.size(),
                   "deletion request for unknown client");
    DeletionSplit split = split_deletion(remaining_[req.client_id], req);
    removed_[req.client_id] =
        data::Dataset::concat(removed_[req.client_id], split.removed);
    remaining_[req.client_id] = std::move(split.remaining);
  }
}

const data::Dataset& GoldfishUnlearner::removed_data(
    std::size_t client) const {
  GOLDFISH_CHECK(client < removed_.size(), "client out of range");
  return removed_[client];
}

const data::Dataset& GoldfishUnlearner::remaining_data(
    std::size_t client) const {
  GOLDFISH_CHECK(client < remaining_.size(), "client out of range");
  return remaining_[client];
}

UnlearnRoundResult GoldfishUnlearner::run_round() {
  const std::size_t n = remaining_.size();
  std::vector<fl::ClientUpdate> updates(n);
  std::atomic<long> epochs{0};
  std::atomic<long> early{0};
  std::vector<double> temps(n, 0.0);

  sched_->parallel_map(n, [&](std::size_t c) {
    // Student starts from the current (re-initialized / partially rebuilt)
    // global model; teacher is the frozen pre-unlearning model. Each client
    // gets its own teacher replica: forward passes mutate layer caches, so
    // sharing one teacher across threads would race.
    nn::Model student = global_;
    nn::Model teacher = teacher_;
    DistillOptions opts = cfg_.distill;
    // Collision-free (client, round) stream separation; the old xor mix let
    // distinct pairs reuse each other's RNG streams (see mix_seed).
    opts.seed = mix_seed(cfg_.seed ^ 0xC0FFEEull, c,
                         static_cast<std::uint64_t>(round_));
    const float ref = reference_loss_of(teacher, remaining_[c], opts);
    const DistillResult res = goldfish_distill(
        student, teacher, remaining_[c], removed_[c], ref, opts);
    epochs.fetch_add(res.epochs_run, std::memory_order_relaxed);
    if (res.terminated_early) early.fetch_add(1, std::memory_order_relaxed);
    temps[c] = res.temperature_used;

    updates[c].params = roundtrip_through_bytes(student.snapshot(), nullptr);
    updates[c].dataset_size = remaining_[c].size();
  });

  if (aggregator_->needs_mse()) {
    sched_->parallel_map(n, [&](std::size_t c) {
      nn::Model scratch = global_;
      scratch.load(updates[c].params);
      updates[c].mse = metrics::mse(scratch, test_);
    });
  }
  global_.load(aggregator_->aggregate(updates));

  UnlearnRoundResult r;
  r.round = round_++;
  r.global_accuracy = metrics::accuracy(global_, test_);
  r.total_epochs_run = epochs.load();
  r.clients_terminated_early = early.load();
  double tsum = 0.0;
  for (double t : temps) tsum += t;
  r.mean_temperature = tsum / double(n);
  return r;
}

std::vector<UnlearnRoundResult> GoldfishUnlearner::run(long rounds) {
  std::vector<UnlearnRoundResult> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (long i = 0; i < rounds; ++i) out.push_back(run_round());
  return out;
}

}  // namespace goldfish::core
