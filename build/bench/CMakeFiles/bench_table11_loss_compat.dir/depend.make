# Empty dependencies file for bench_table11_loss_compat.
# This may be replaced when dependencies are built.
