// Server-side model aggregation: FedAvg (McMahan et al.), the paper's
// adaptive-weight extension (Eq. 12–13), and FedBuff-style staleness
// discounting for the buffered-asynchronous round loop.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "nn/model.h"

namespace goldfish::fl {

/// One client's upload: a parameter snapshot plus its dataset size.
struct ClientUpdate {
  std::vector<Tensor> params;
  long dataset_size = 0;
  /// MSE of the client model on the server's test set; filled by the server
  /// before adaptive aggregation (Eq. 12 is computed "at the central
  /// server").
  double mse = 0.0;
  /// Server-version lag at aggregation time (asynchronous rounds): the
  /// number of aggregations that fired between the model this update was
  /// trained from and the one consuming it. Always 0 in synchronous rounds.
  long staleness = 0;
};

/// Aggregation strategy interface. Strategies supply per-update *weights*;
/// the averaging itself is shared (and copy-free: update snapshots are
/// borrowed by nn::weighted_average, never cloned).
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Per-update base weights (need not be normalized). Throws on inputs the
  /// strategy cannot weight (e.g. FedAvg with an empty client dataset).
  virtual std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const = 0;

  /// Weighted average of the updates' parameters under weights().
  std::vector<Tensor> aggregate(
      const std::vector<ClientUpdate>& updates) const;

  /// True when the strategy reads ClientUpdate::mse, i.e. the server must
  /// score every update on its test set before aggregating (replaces the
  /// brittle `name() == "adaptive"` string check).
  virtual bool needs_mse() const { return false; }

  virtual std::string name() const = 0;
};

/// FedAvg: weights proportional to |D_c|.
class FedAvgAggregator final : public Aggregator {
 public:
  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "fedavg"; }
};

/// Uniform (equal-weight) parameter averaging: ω = (1/C)·Σ ω_c. This is the
/// naive FedAvg variant many FL implementations ship (and the behaviour the
/// paper's Fig. 8/9 comparison exhibits — see EXPERIMENTS.md); kept distinct
/// from the size-weighted FedAvgAggregator above.
class UniformAggregator final : public Aggregator {
 public:
  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "uniform"; }
};

/// Goldfish adaptive weights (Eq. 12–13):
///   W_c = exp(−(me_c − mē)/mē),  ω = (1/θ)·Σ W_c·ω_c, θ = Σ W_c.
/// Lower test MSE ⇒ exponentially larger weight.
class AdaptiveAggregator final : public Aggregator {
 public:
  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  bool needs_mse() const override { return true; }
  std::string name() const override { return "adaptive"; }

  /// The raw Eq. 12 weights (exposed for tests/benches). All-zero MSEs
  /// (every client fits the test set perfectly — common on tiny synthetic
  /// sets) fall back to uniform weights instead of aborting.
  static std::vector<float> weights_from_mse(const std::vector<double>& mses);
};

/// FedBuff-style staleness discounting layered over any base strategy: each
/// update's base weight is multiplied by the polynomial decay (1+s)^−α,
/// where s is ClientUpdate::staleness. α = 0 reproduces the base aggregator
/// exactly (decay ≡ 1). Composes with all three strategies above, including
/// the paper's adaptive MSE weighting.
class StalenessAggregator final : public Aggregator {
 public:
  StalenessAggregator(std::unique_ptr<Aggregator> base, double alpha);

  std::vector<float> weights(
      const std::vector<ClientUpdate>& updates) const override;
  bool needs_mse() const override { return base_->needs_mse(); }
  std::string name() const override { return base_->name() + "+staleness"; }

  /// The (1+s)^−α decay factor itself (exposed for tests).
  static float decay(long staleness, double alpha);

 private:
  std::unique_ptr<Aggregator> base_;
  double alpha_;
};

std::unique_ptr<Aggregator> make_aggregator(const std::string& name);

}  // namespace goldfish::fl
