// WirePolicy benchmarks (google-benchmark): encode+decode throughput of
// every wire on a realistic MLP snapshot, and the accuracy-vs-bytes axis of
// a quantized engine scenario against its dense twin.
//
// Two ratchet hooks (bench/baseline_ci.json):
//   * items_per_second of the BM_WireEncode* roundtrips is *dense* model
//     bytes shipped per second — GB/s of model traffic, the same unit for
//     every wire, so per-wire floors catch a serialized or de-vectorized
//     codec regardless of its compression ratio.
//   * BM_WireScenarioQuantized reports the upload_bytes, bytes_vs_dense_pct
//     and acc_drop_pts counters from a fresh quantized-vs-dense engine pair;
//     counters_min / counters_max gates pin "real nonzero byte counts, at
//     least 3x smaller than dense, accuracy within the documented 2-point
//     tolerance".
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "nn/models.h"
#include "tensor/buffer_pool.h"

namespace goldfish {
namespace {

/// A 256-hidden MLP snapshot (~814 KB dense): big enough that codec
/// throughput, not fixed overhead, dominates.
std::vector<Tensor> bench_params(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> ps;
  ps.push_back(Tensor::randn({256, 784}, rng));
  ps.push_back(Tensor::randn({256}, rng));
  ps.push_back(Tensor::randn({10, 256}, rng));
  ps.push_back(Tensor::randn({10}, rng));
  return ps;
}

void roundtrip_loop(benchmark::State& state, const fl::WirePolicy& wire,
                    bool with_reference) {
  BufferPoolScope recycle;  // decode output tensors recycle between iters
  const std::vector<Tensor> ps = bench_params(101);
  const std::vector<Tensor> ref = bench_params(102);
  const std::vector<Tensor>* r = with_reference ? &ref : nullptr;
  std::string buf;
  for (auto _ : state) {
    wire.encode(ps, r, buf);
    std::vector<Tensor> back = wire.decode(buf.data(), buf.size(), r);
    benchmark::DoNotOptimize(back.front().data());
  }
  // Items = dense bytes of the snapshot shipped per roundtrip: one unit for
  // every wire, so items_per_second compares codecs on model traffic moved,
  // not on their (smaller) encoded output.
  const std::size_t dense_bytes = fl::DenseWire().encoded_bytes(ps);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dense_bytes));
  state.counters["bytes_per_update"] = double(buf.size());
  state.counters["bytes_vs_dense_pct"] =
      100.0 * double(buf.size()) / double(dense_bytes);
}

void BM_WireEncodeDense(benchmark::State& state) {
  roundtrip_loop(state, fl::DenseWire(), false);
}
BENCHMARK(BM_WireEncodeDense)->Unit(benchmark::kMicrosecond);

void BM_WireEncodeQuantized(benchmark::State& state) {
  roundtrip_loop(state, fl::QuantizedWire(), false);
}
BENCHMARK(BM_WireEncodeQuantized)->Unit(benchmark::kMicrosecond);

void BM_WireEncodeTopK(benchmark::State& state) {
  roundtrip_loop(state, fl::TopKWire(0.1), false);
}
BENCHMARK(BM_WireEncodeTopK)->Unit(benchmark::kMicrosecond);

void BM_WireEncodeDeltaQuantized(benchmark::State& state) {
  roundtrip_loop(state,
                 fl::DeltaWire(std::make_unique<fl::QuantizedWire>()), true);
}
BENCHMARK(BM_WireEncodeDeltaQuantized)->Unit(benchmark::kMicrosecond);

// -- the accuracy-vs-bytes axis, end to end ---------------------------------

constexpr long kClients = 16;
constexpr long kRowsPerClient = 100;
constexpr long kTestRows = 1024;
constexpr long kHidden = 8;
constexpr long kAggs = 4;

struct Federation {
  std::vector<data::Dataset> parts;
  data::Dataset test;
  nn::Model global;

  Federation() {
    auto tt = data::make_synthetic(data::default_spec(
        data::DatasetKind::Mnist, 991, kClients * kRowsPerClient, kTestRows));
    Rng rng(17);
    parts = data::partition_iid(tt.train, kClients, rng);
    test = std::move(tt.test);
    global = nn::make_mlp({1, 28, 28}, kHidden, 10, rng);
  }
};

fl::StepResult run_fresh(const Federation& fed,
                         std::unique_ptr<fl::WirePolicy> wire) {
  fl::FlConfig cfg;
  cfg.async.buffer_size = kClients / 2;
  fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
  fl::Scenario s = eng.async_scenario(kAggs);
  s.wire = std::move(wire);
  return eng.collect(std::move(s)).back();
}

void BM_WireScenarioQuantized(benchmark::State& state) {
  Federation fed;
  // The gated counters come from a matched fresh pair — both runs train the
  // identical schedule from the identical initial model; only the wire
  // differs. Deterministic per seed, so the gates are exact, not noisy.
  const fl::StepResult dense = run_fresh(fed, nullptr);
  const fl::StepResult quant =
      run_fresh(fed, std::make_unique<fl::QuantizedWire>());

  fl::FlConfig cfg;
  cfg.async.buffer_size = kClients / 2;
  fl::Engine eng(fed.global, fed.parts, fed.test, cfg);
  const auto scenario = [&] {
    fl::Scenario s = eng.async_scenario(kAggs);
    s.wire = std::make_unique<fl::QuantizedWire>();
    return s;
  };
  eng.run(scenario(), {});  // warm the pool, arenas and recycler
  long aggs = 0;
  for (auto _ : state) {
    eng.run(scenario(), [&](const fl::StepResult& r) {
      ++aggs;
      benchmark::DoNotOptimize(r.global_accuracy);
    });
  }
  state.SetItemsProcessed(aggs);
  state.counters["upload_bytes"] = double(quant.upload_bytes);
  state.counters["bytes_vs_dense_pct"] =
      100.0 * double(quant.upload_bytes) / double(dense.upload_bytes);
  state.counters["acc_drop_pts"] =
      dense.global_accuracy - quant.global_accuracy;
}
BENCHMARK(BM_WireScenarioQuantized)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace goldfish

BENCHMARK_MAIN();
