#include "nn/activations.h"

#include <algorithm>

namespace goldfish::nn {

const Tensor& ReLU::forward(const Tensor& x, bool /*train*/) {
  Tensor& y = slot(0, x.shape());
  Tensor& mask = slot(1, x.shape());
  mask_shape_ = x.shape();
  const float* xd = x.data();
  float* yd = y.data();
  float* md = mask.data();
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (xd[i] > 0.0f) {
      yd[i] = xd[i];
      md[i] = 1.0f;
    } else {
      yd[i] = 0.0f;
      md[i] = 0.0f;
    }
  }
  return y;
}

const Tensor& ReLU::backward(const Tensor& grad_output) {
  GOLDFISH_CHECK(grad_output.shape() == mask_shape_, "relu grad shape");
  const Tensor& mask = slot(1, mask_shape_);  // same shape: contents intact
  Tensor& g = slot(2, grad_output.shape());
  const float* gd_in = grad_output.data();
  const float* md = mask.data();
  float* gd = g.data();
  for (std::size_t i = 0; i < g.numel(); ++i) gd[i] = gd_in[i] * md[i];
  return g;
}

std::unique_ptr<Layer> ReLU::clone() const {
  auto copy = std::make_unique<ReLU>(*this);
  copy->mask_shape_.clear();
  return copy;
}

const Tensor& Unflatten::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() == 4) return x;  // already image-shaped
  GOLDFISH_CHECK(x.rank() == 2 && x.dim(1) == c_ * h_ * w_,
                 "unflatten input shape " + x.shape_str());
  Tensor& y = slot(0, {x.dim(0), c_, h_, w_});
  std::copy(x.data(), x.data() + x.numel(), y.data());
  return y;
}

const Tensor& Unflatten::backward(const Tensor& grad_output) {
  Tensor& g = slot(1, {grad_output.dim(0), c_ * h_ * w_});
  std::copy(grad_output.data(), grad_output.data() + grad_output.numel(),
            g.data());
  return g;
}

std::unique_ptr<Layer> Unflatten::clone() const {
  return std::make_unique<Unflatten>(*this);
}

const Tensor& Flatten::forward(const Tensor& x, bool /*train*/) {
  cached_shape_ = x.shape();
  GOLDFISH_CHECK(x.rank() >= 2, "flatten needs a batch dimension");
  long features = 1;
  for (std::size_t i = 1; i < x.rank(); ++i) features *= x.dim(i);
  Tensor& y = slot(0, {x.dim(0), features});
  std::copy(x.data(), x.data() + x.numel(), y.data());
  return y;
}

const Tensor& Flatten::backward(const Tensor& grad_output) {
  Tensor& g = slot(1, cached_shape_);
  GOLDFISH_CHECK(g.numel() == grad_output.numel(), "flatten grad size");
  std::copy(grad_output.data(), grad_output.data() + grad_output.numel(),
            g.data());
  return g;
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>(*this);
}

}  // namespace goldfish::nn
