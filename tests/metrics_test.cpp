// Metrics: accuracy/ASR/MSE on models with known behaviour, and the
// statistical comparison metrics of Tables VII–IX.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "fl/trainer.h"
#include "metrics/divergence.h"
#include "metrics/evaluation.h"
#include "nn/models.h"

namespace goldfish {
namespace {

/// A freshly trained small MLP on an easy synthetic set: gives us a model
/// whose accuracy is far above chance, so metric directions are testable.
struct TrainedFixture {
  data::TrainTest tt;
  nn::Model model;

  TrainedFixture()
      : tt(data::make_synthetic(
            data::default_spec(data::DatasetKind::Mnist, 21, 400, 200))),
        model([] {
          Rng rng(22);
          return nn::make_mlp({1, 28, 28}, 32, 10, rng);
        }()) {
    fl::TrainOptions opts;
    opts.epochs = 8;
    opts.lr = 0.01f;
    fl::train_local(model, tt.train, opts);
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

TEST(Accuracy, TrainedModelBeatsChance) {
  auto& f = fixture();
  const double acc = metrics::accuracy(f.model, f.tt.test);
  EXPECT_GT(acc, 50.0);  // chance = 10%
  EXPECT_LE(acc, 100.0);
}

TEST(Accuracy, UntrainedModelNearChance) {
  auto& f = fixture();
  Rng rng(23);
  nn::Model fresh = nn::make_mlp({1, 28, 28}, 32, 10, rng);
  const double acc = metrics::accuracy(fresh, f.tt.test);
  EXPECT_LT(acc, 35.0);
}

TEST(Accuracy, EmptyDatasetThrows) {
  auto& f = fixture();
  data::Dataset empty;
  EXPECT_THROW(metrics::accuracy(f.model, empty), CheckError);
}

TEST(Mse, LowerForBetterModel) {
  auto& f = fixture();
  Rng rng(24);
  nn::Model fresh = nn::make_mlp({1, 28, 28}, 32, 10, rng);
  const double trained = metrics::mse(f.model, f.tt.test);
  const double untrained = metrics::mse(fresh, f.tt.test);
  EXPECT_LT(trained, untrained);
  EXPECT_GT(trained, 0.0);
}

TEST(MeanPrediction, IsDistribution) {
  auto& f = fixture();
  const auto mean = metrics::mean_prediction(f.model, f.tt.test);
  ASSERT_EQ(mean.size(), 10u);
  double s = 0.0;
  for (double v : mean) {
    EXPECT_GE(v, 0.0);
    s += v;
  }
  EXPECT_NEAR(s, 1.0, 1e-4);
}

TEST(ConfidenceSeries, OnePerSampleInUnitRange) {
  auto& f = fixture();
  const auto conf = metrics::confidence_series(f.model, f.tt.test);
  EXPECT_EQ(conf.size(), static_cast<std::size_t>(f.tt.test.size()));
  for (double c : conf) {
    EXPECT_GE(c, 1.0 / 10 - 1e-9);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST(AttackSuccessRate, EmptyProbeIsZero) {
  auto& f = fixture();
  data::Dataset empty;
  EXPECT_EQ(metrics::attack_success_rate(f.model, empty), 0.0);
}

// -- divergence metrics -----------------------------------------------------

TEST(Jsd, IdenticalDistributionsAreZero) {
  const std::vector<double> p{0.2, 0.3, 0.5};
  EXPECT_NEAR(metrics::jensen_shannon_divergence(p, p), 0.0, 1e-12);
}

TEST(Jsd, DisjointDistributionsAreLn2) {
  const std::vector<double> p{1.0, 0.0};
  const std::vector<double> q{0.0, 1.0};
  EXPECT_NEAR(metrics::jensen_shannon_divergence(p, q), std::log(2.0), 1e-9);
}

TEST(Jsd, SymmetricAndNormalizing) {
  const std::vector<double> p{2.0, 6.0, 2.0};  // unnormalized on purpose
  const std::vector<double> q{1.0, 1.0, 8.0};
  const double pq = metrics::jensen_shannon_divergence(p, q);
  const double qp = metrics::jensen_shannon_divergence(q, p);
  EXPECT_NEAR(pq, qp, 1e-12);
  EXPECT_GT(pq, 0.0);
  EXPECT_LT(pq, std::log(2.0));
}

TEST(Jsd, LengthMismatchThrows) {
  EXPECT_THROW(
      metrics::jensen_shannon_divergence({0.5, 0.5}, {1.0, 0.0, 0.0}),
      CheckError);
}

TEST(L2Distance, KnownValue) {
  EXPECT_NEAR(metrics::l2_distance({0.0, 0.0}, {3.0, 4.0}), 5.0, 1e-12);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform CDF)
  EXPECT_NEAR(metrics::incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-9);
  // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a)
  const double v = metrics::incomplete_beta(2.5, 1.5, 0.4);
  EXPECT_NEAR(v, 1.0 - metrics::incomplete_beta(1.5, 2.5, 0.6), 1e-9);
  EXPECT_NEAR(metrics::incomplete_beta(2.0, 3.0, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(metrics::incomplete_beta(2.0, 3.0, 1.0), 1.0, 1e-12);
}

TEST(WelchTTest, SameDistributionHighP) {
  Rng rng(25);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.normal(0.0f, 1.0f));
    b.push_back(rng.normal(0.0f, 1.0f));
  }
  const auto r = metrics::welch_ttest(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(WelchTTest, ShiftedMeansLowP) {
  Rng rng(26);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.normal(0.0f, 1.0f));
    b.push_back(rng.normal(1.0f, 1.0f));
  }
  const auto r = metrics::welch_ttest(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_LT(r.t_statistic, 0.0);  // a's mean is lower
}

TEST(WelchTTest, KnownHandComputedValue) {
  // Hand computation: means 21.0 vs 23.3667, s²/n sum 3.3679 →
  // t = −2.3667/1.8352 = −1.2896, Welch df ≈ 7.64, two-sided p ≈ 0.234.
  const std::vector<double> a{27.5, 21.0, 19.0, 23.6, 17.0, 17.9};
  const std::vector<double> b{27.1, 22.0, 20.8, 23.4, 23.4, 23.5};
  const auto r = metrics::welch_ttest(a, b);
  EXPECT_NEAR(r.t_statistic, -1.2896, 0.001);
  EXPECT_NEAR(r.degrees_of_freedom, 7.64, 0.05);
  EXPECT_NEAR(r.p_value, 0.234, 0.01);
}

TEST(WelchTTest, DegenerateZeroVariance) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> same{1.0, 1.0, 1.0};
  const std::vector<double> diff{2.0, 2.0, 2.0};
  EXPECT_NEAR(metrics::welch_ttest(a, same).p_value, 1.0, 1e-12);
  EXPECT_NEAR(metrics::welch_ttest(a, diff).p_value, 0.0, 1e-12);
}

TEST(WelchTTest, TooFewSamplesThrows) {
  EXPECT_THROW(metrics::welch_ttest({1.0}, {1.0, 2.0}), CheckError);
}

}  // namespace
}  // namespace goldfish
