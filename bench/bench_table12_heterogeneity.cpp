// Table XII: heterogeneity statistics of the Fig. 8 partitions — variance
// of client dataset sizes and the min/max accuracy of independently trained
// local models. Paper shape: variance grows with the client count; min local
// accuracy hovers near chance (≈10%) while max reaches ~70%+.
#include "bench/common.h"

int main() {
  using namespace goldfish;
  using namespace goldfish::bench;
  print_header("Table XII: data heterogeneity representation");

  const auto prof = profile(data::DatasetKind::Mnist);
  metrics::TableReporter table(
      "Table XII — heterogeneity stats (MNIST)",
      {"clients", "size variance", "min acc", "max acc"});

  for (long clients : {5L, 15L, 25L}) {
    const long per_client_budget = metrics::full_scale() ? 160 : 60;
    auto tt = data::make_synthetic(data::default_spec(
        data::DatasetKind::Mnist, 800 + static_cast<std::uint64_t>(clients),
        clients * per_client_budget, prof.test_size));
    Rng rng(801);
    data::HeteroOptions opt;
    auto parts = data::partition_heterogeneous(tt.train, clients, opt, rng);
    const auto stats = data::partition_stats(parts);

    // Train each client's model independently and measure the spread.
    double min_acc = 100.0, max_acc = 0.0;
    std::vector<double> accs(parts.size());
    runtime::Scheduler::global().parallel_map(parts.size(), [&](std::size_t c) {
      Rng mrng(802);
      nn::Model m = nn::make_model(prof.arch, tt.train.geom,
                                   tt.train.num_classes, mrng);
      fl::TrainOptions opts;
      opts.epochs = prof.local_epochs;
      opts.batch_size = prof.batch;
      opts.lr = prof.lr;
      opts.seed = 803 + c;
      fl::train_local(m, parts[c], opts);
      accs[c] = metrics::accuracy(m, tt.test);
    }, /*grain=*/1);  // one body = one whole client training run
    for (double a : accs) {
      min_acc = std::min(min_acc, a);
      max_acc = std::max(max_acc, a);
    }

    table.add_row({std::to_string(clients),
                   metrics::fmt(stats.size_variance, 1),
                   metrics::fmt(min_acc), metrics::fmt(max_acc)});
  }
  table.print();
  table.write_csv(csv_dir() + "/tableXII_heterogeneity.csv");
  return 0;
}
