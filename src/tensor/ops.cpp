#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "runtime/gemm.h"
#include "runtime/scheduler.h"

namespace goldfish {

namespace {

void check_2d(const Tensor& t, const char* who) {
  GOLDFISH_CHECK(t.rank() == 2, std::string(who) + " expects a 2-D tensor");
}

/// Logical (rows, cols) of op(t) given its storage and transpose flag.
std::pair<long, long> op_dims(const Tensor& t, bool trans) {
  return trans ? std::make_pair(t.dim(1), t.dim(0))
               : std::make_pair(t.dim(0), t.dim(1));
}

}  // namespace

void gemm_acc(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
              bool trans_b) {
  check_2d(a, "gemm");
  check_2d(b, "gemm");
  check_2d(c, "gemm");
  const auto [m, k] = op_dims(a, trans_a);
  const auto [kb, n] = op_dims(b, trans_b);
  GOLDFISH_CHECK(kb == k, "gemm inner dims: " + a.shape_str() + " · " +
                              b.shape_str());
  GOLDFISH_CHECK(c.dim(0) == m && c.dim(1) == n,
                 "gemm output shape: " + c.shape_str());
  runtime::sgemm(trans_a, trans_b, m, n, k, a.data(), a.dim(1), b.data(),
                 b.dim(1), c.data(), n);
}

void gemm_into(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
               bool trans_b) {
  check_2d(a, "gemm");
  check_2d(b, "gemm");
  const auto [m, k] = op_dims(a, trans_a);
  const auto [kb, n] = op_dims(b, trans_b);
  GOLDFISH_CHECK(kb == k, "gemm inner dims: " + a.shape_str() + " · " +
                              b.shape_str());
  c.resize_uninit({m, n});  // beta=0 overwrites every element
  runtime::sgemm(trans_a, trans_b, m, n, k, a.data(), a.dim(1), b.data(),
                 b.dim(1), c.data(), n, /*beta=*/0.0f, runtime::Epilogue::kNone,
                 nullptr);
}

Tensor gemm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  Tensor c;
  gemm_into(c, a, b, trans_a, trans_b);
  return c;
}

void gemm_fused_into(Tensor& c, const Tensor& a, const Tensor& b, bool trans_a,
                     bool trans_b, runtime::Epilogue epilogue,
                     const Tensor& bias) {
  check_2d(a, "gemm_fused");
  check_2d(b, "gemm_fused");
  GOLDFISH_CHECK(epilogue != runtime::Epilogue::kNone,
                 "gemm_fused needs an epilogue; use gemm() for the plain "
                 "product");
  const auto [m, k] = op_dims(a, trans_a);
  const auto [kb, n] = op_dims(b, trans_b);
  GOLDFISH_CHECK(kb == k, "gemm inner dims: " + a.shape_str() + " · " +
                              b.shape_str());
  const bool per_col = epilogue == runtime::Epilogue::kBiasCol ||
                       epilogue == runtime::Epilogue::kBiasColRelu;
  const long want = per_col ? n : m;
  GOLDFISH_CHECK(bias.rank() == 1 && bias.dim(0) == want,
                 "gemm_fused bias shape " + bias.shape_str());
  c.resize_uninit({m, n});
  runtime::sgemm(trans_a, trans_b, m, n, k, a.data(), a.dim(1), b.data(),
                 b.dim(1), c.data(), n, /*beta=*/0.0f, epilogue, bias.data());
}

Tensor gemm_fused(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                  runtime::Epilogue epilogue, const Tensor& bias) {
  Tensor c;
  gemm_fused_into(c, a, b, trans_a, trans_b, epilogue, bias);
  return c;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return gemm(a, b, false, false);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  return gemm(a, b, true, false);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  return gemm(a, b, false, true);
}

Tensor transpose(const Tensor& a) {
  check_2d(a, "transpose");
  const long m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (long i = 0; i < m; ++i)
    for (long j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  return t;
}

Tensor softmax_rows(const Tensor& logits, float temperature) {
  check_2d(logits, "softmax_rows");
  GOLDFISH_CHECK(temperature > 0.0f, "temperature must be positive");
  const long rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  parallel_for(
      rows,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          float mx = -1e30f;
          for (long j = 0; j < cols; ++j) mx = std::max(mx, logits.at(i, j));
          double denom = 0.0;
          for (long j = 0; j < cols; ++j) {
            const float e = std::exp((logits.at(i, j) - mx) / temperature);
            out.at(i, j) = e;
            denom += e;
          }
          const float inv = static_cast<float>(1.0 / denom);
          for (long j = 0; j < cols; ++j) out.at(i, j) *= inv;
        }
      },
      std::max(1L, 4096 / std::max(1L, cols)));
  return out;
}

Tensor log_softmax_rows(const Tensor& logits, float temperature) {
  check_2d(logits, "log_softmax_rows");
  GOLDFISH_CHECK(temperature > 0.0f, "temperature must be positive");
  const long rows = logits.dim(0), cols = logits.dim(1);
  Tensor out({rows, cols});
  parallel_for(
      rows,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          float mx = -1e30f;
          for (long j = 0; j < cols; ++j) mx = std::max(mx, logits.at(i, j));
          double denom = 0.0;
          for (long j = 0; j < cols; ++j)
            denom += std::exp((logits.at(i, j) - mx) / temperature);
          const float log_denom = static_cast<float>(std::log(denom));
          for (long j = 0; j < cols; ++j)
            out.at(i, j) = (logits.at(i, j) - mx) / temperature - log_denom;
        }
      },
      std::max(1L, 4096 / std::max(1L, cols)));
  return out;
}

std::vector<long> argmax_rows(const Tensor& t) {
  check_2d(t, "argmax_rows");
  const long rows = t.dim(0), cols = t.dim(1);
  std::vector<long> out(static_cast<std::size_t>(rows));
  for (long i = 0; i < rows; ++i) {
    long best = 0;
    float bv = t.at(i, 0);
    for (long j = 1; j < cols; ++j) {
      if (t.at(i, j) > bv) {
        bv = t.at(i, j);
        best = j;
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

std::vector<float> row_variance(const Tensor& t) {
  check_2d(t, "row_variance");
  const long rows = t.dim(0), cols = t.dim(1);
  std::vector<float> out(static_cast<std::size_t>(rows));
  for (long i = 0; i < rows; ++i) {
    double mean = 0.0;
    for (long j = 0; j < cols; ++j) mean += t.at(i, j);
    mean /= cols;
    double var = 0.0;
    for (long j = 0; j < cols; ++j) {
      const double d = t.at(i, j) - mean;
      var += d * d;
    }
    out[static_cast<std::size_t>(i)] = static_cast<float>(var / cols);
  }
  return out;
}

Tensor clamp_min(Tensor t, float lo) {
  for (float& x : t.vec()) x = std::max(x, lo);
  return t;
}

Tensor hadamard(Tensor lhs, const Tensor& rhs) {
  GOLDFISH_CHECK(lhs.same_shape(rhs), "hadamard shape mismatch");
  float* a = lhs.data();
  const float* b = rhs.data();
  for (std::size_t i = 0; i < lhs.numel(); ++i) a[i] *= b[i];
  return lhs;
}

void im2col_into(const Tensor& input, const Conv2dGeom& g, Tensor& cols) {
  GOLDFISH_CHECK(input.rank() == 4, "im2col expects (N,C,H,W)");
  GOLDFISH_CHECK(input.dim(1) == g.in_channels && input.dim(2) == g.in_h &&
                     input.dim(3) == g.in_w,
                 "im2col geometry mismatch: " + input.shape_str());
  const long N = input.dim(0);
  const long oh = g.out_h(), ow = g.out_w();
  const long patch = g.patch_size();
  cols.resize_uninit({patch, N * oh * ow});  // every element written below
  float* dst = cols.data();
  const long col_stride = N * oh * ow;
  // Samples write disjoint column ranges → parallel over the batch.
  parallel_for(N, [&](long n_lo, long n_hi) {
  for (long n = n_lo; n < n_hi; ++n) {
    for (long c = 0; c < g.in_channels; ++c) {
      for (long kh = 0; kh < g.kernel; ++kh) {
        for (long kw = 0; kw < g.kernel; ++kw) {
          const long row = ((c * g.kernel) + kh) * g.kernel + kw;
          for (long y = 0; y < oh; ++y) {
            const long iy = y * g.stride + kh - g.pad;
            for (long x = 0; x < ow; ++x) {
              const long ix = x * g.stride + kw - g.pad;
              const long col = (n * oh + y) * ow + x;
              float v = 0.0f;
              if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                v = input.at4(n, c, iy, ix);
              dst[row * col_stride + col] = v;
            }
          }
        }
      }
    }
  }
  }, /*grain=*/1);
}

Tensor im2col(const Tensor& input, const Conv2dGeom& g) {
  Tensor cols;
  im2col_into(input, g, cols);
  return cols;
}

void col2im_into(const Tensor& cols, long batch, const Conv2dGeom& g,
                 Tensor& img) {
  GOLDFISH_CHECK(cols.rank() == 2, "col2im expects a 2-D tensor");
  const long oh = g.out_h(), ow = g.out_w();
  const long patch = g.patch_size();
  GOLDFISH_CHECK(cols.dim(0) == patch && cols.dim(1) == batch * oh * ow,
                 "col2im geometry mismatch");
  img.resize_uninit({batch, g.in_channels, g.in_h, g.in_w});
  img.zero();  // padding positions receive no scatter writes
  const float* src = cols.data();
  const long col_stride = batch * oh * ow;
  // Samples scatter into disjoint image slices → parallel over the batch.
  parallel_for(batch, [&](long n_lo, long n_hi) {
  for (long n = n_lo; n < n_hi; ++n) {
    for (long c = 0; c < g.in_channels; ++c) {
      for (long kh = 0; kh < g.kernel; ++kh) {
        for (long kw = 0; kw < g.kernel; ++kw) {
          const long row = ((c * g.kernel) + kh) * g.kernel + kw;
          for (long y = 0; y < oh; ++y) {
            const long iy = y * g.stride + kh - g.pad;
            if (iy < 0 || iy >= g.in_h) continue;
            for (long x = 0; x < ow; ++x) {
              const long ix = x * g.stride + kw - g.pad;
              if (ix < 0 || ix >= g.in_w) continue;
              const long col = (n * oh + y) * ow + x;
              img.at4(n, c, iy, ix) += src[row * col_stride + col];
            }
          }
        }
      }
    }
  }
  }, /*grain=*/1);
}

Tensor col2im(const Tensor& cols, long batch, const Conv2dGeom& g) {
  Tensor img;
  col2im_into(cols, batch, g, img);
  return img;
}

}  // namespace goldfish
