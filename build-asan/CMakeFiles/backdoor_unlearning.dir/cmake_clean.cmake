file(REMOVE_RECURSE
  "CMakeFiles/backdoor_unlearning.dir/examples/backdoor_unlearning.cpp.o"
  "CMakeFiles/backdoor_unlearning.dir/examples/backdoor_unlearning.cpp.o.d"
  "backdoor_unlearning"
  "backdoor_unlearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backdoor_unlearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
