# Empty dependencies file for bench_table7_9_divergence.
# This may be replaced when dependencies are built.
