# Empty dependencies file for goldfish_tests.
# This may be replaced when dependencies are built.
