// In-memory labeled dataset and batching utilities.
#pragma once

#include <vector>

#include "nn/models.h"
#include "tensor/tensor.h"

namespace goldfish::data {

/// Flat-feature labeled dataset. Features are (N, D) with D = C·H·W; the
/// geometry is carried along so conv models can unflatten.
struct Dataset {
  Tensor features;           // (N, D)
  std::vector<long> labels;  // N entries in [0, num_classes)
  long num_classes = 0;
  nn::InputGeom geom;

  long size() const { return features.empty() ? 0 : features.dim(0); }
  bool empty() const { return size() == 0; }

  /// Row-subset copy (order follows `indices`).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Concatenation (schemas must match).
  static Dataset concat(const Dataset& a, const Dataset& b);

  /// Extract a feature batch + labels for the given rows.
  std::pair<Tensor, std::vector<long>> batch(
      const std::vector<std::size_t>& indices) const;

  /// batch() into caller-owned storage: `x`/`y` are resized in place, so a
  /// training loop that reuses them across steps stops allocating once the
  /// batch shape has been seen.
  void batch_into(const std::size_t* indices, std::size_t count, Tensor& x,
                  std::vector<long>& y) const;

  /// Contiguous-range batch [lo, hi): one straight copy of the feature rows
  /// (no index vector, no per-row gather) plus a pointer into the label
  /// array. The sequential-evaluation fast path.
  std::pair<Tensor, const long*> batch_view(long lo, long hi) const;

  /// Per-class sample counts (histogram of labels).
  std::vector<long> class_histogram() const;
};

/// Iterate a dataset in shuffled mini-batches of size `batch_size`
/// (final partial batch included).
class BatchIterator {
 public:
  BatchIterator(const Dataset& ds, long batch_size, Rng& rng);

  /// Number of batches in one epoch.
  std::size_t num_batches() const;

  /// Index list of batch b (0-based).
  std::vector<std::size_t> batch_indices(std::size_t b) const;

  /// Zero-copy view of batch b's indices (a contiguous range of the epoch
  /// permutation); valid while the iterator lives.
  std::pair<const std::size_t*, std::size_t> batch_span(std::size_t b) const;

 private:
  const Dataset* ds_;
  long batch_size_;
  std::vector<std::size_t> order_;
};

}  // namespace goldfish::data
