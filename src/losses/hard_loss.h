// Hard-loss implementations: the "discrepancy between predictions and actual
// labels" family (§III-B). Three interchangeable variants back the paper's
// compatibility study (Table XI): cross-entropy (α), focal (β), NLL (γ).
//
// Every loss returns both its scalar value (mean over the batch) and the
// gradient w.r.t. the logits, so callers backpropagate without re-deriving
// softmax Jacobians.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace goldfish::losses {

/// Loss value plus gradient w.r.t. the logits that produced it.
struct LossResult {
  float value = 0.0f;
  Tensor grad_logits;
};

/// Interface over per-sample classification losses on logits.
class HardLoss {
 public:
  virtual ~HardLoss() = default;
  /// Mean loss over the batch; labels.size() must equal logits.dim(0).
  virtual LossResult eval(const Tensor& logits,
                          const std::vector<long>& labels) const = 0;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<HardLoss> clone() const = 0;
};

/// Softmax cross-entropy: −log p_y. "Total loss α" in Table XI.
class CrossEntropyLoss final : public HardLoss {
 public:
  LossResult eval(const Tensor& logits,
                  const std::vector<long>& labels) const override;
  std::string name() const override { return "cross_entropy"; }
  std::unique_ptr<HardLoss> clone() const override {
    return std::make_unique<CrossEntropyLoss>(*this);
  }
};

/// Focal loss (Lin et al., ICCV'17): −(1−p_y)^γ·log p_y. "Total loss β".
class FocalLoss final : public HardLoss {
 public:
  explicit FocalLoss(float gamma = 2.0f) : gamma_(gamma) {}
  LossResult eval(const Tensor& logits,
                  const std::vector<long>& labels) const override;
  std::string name() const override { return "focal"; }
  std::unique_ptr<HardLoss> clone() const override {
    return std::make_unique<FocalLoss>(*this);
  }
  float gamma() const { return gamma_; }

 private:
  float gamma_;
};

/// Negative log-likelihood over log-softmax outputs. On a logits model this
/// coincides with cross-entropy analytically (PyTorch's CE = log_softmax +
/// NLL); kept as a distinct type for the Table XI protocol, with the
/// log-probabilities path exercised explicitly. "Total loss γ".
class NllLoss final : public HardLoss {
 public:
  LossResult eval(const Tensor& logits,
                  const std::vector<long>& labels) const override;
  std::string name() const override { return "nll"; }
  std::unique_ptr<HardLoss> clone() const override {
    return std::make_unique<NllLoss>(*this);
  }
};

/// Factory by name: "cross_entropy" | "focal" | "nll".
std::unique_ptr<HardLoss> make_hard_loss(const std::string& name);

}  // namespace goldfish::losses
