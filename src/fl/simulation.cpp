#include "fl/simulation.h"

namespace goldfish::fl {

namespace {

RoundResult to_round_result(const StepResult& s, long round_base) {
  RoundResult r;
  r.round = round_base + s.step;
  r.global_accuracy = s.global_accuracy;
  r.min_local_accuracy = s.min_local_accuracy;
  r.max_local_accuracy = s.max_local_accuracy;
  r.mean_local_accuracy = s.mean_local_accuracy;
  r.bytes_uplinked = s.bytes_uplinked;
  return r;
}

AsyncRoundResult to_async_result(const StepResult& s) {
  AsyncRoundResult r;
  r.agg = s.step;
  r.virtual_time = s.virtual_time;
  r.global_accuracy = s.global_accuracy;
  r.mean_staleness = s.mean_staleness;
  r.max_staleness = s.max_staleness;
  r.updates_consumed = s.updates_consumed;
  r.dropped_updates = s.dropped_updates;
  r.bytes_uplinked = s.bytes_uplinked;
  r.upload_bytes = s.upload_bytes;
  r.encode_error = s.encode_error;
  return r;
}

}  // namespace

RoundResult FederatedSim::run_round() {
  RoundResult out;
  const long base = engine_.rounds_completed();
  engine_.run(engine_.sync_scenario(1),
              [&](const StepResult& s) { out = to_round_result(s, base); });
  return out;
}

std::vector<RoundResult> FederatedSim::run(long rounds) {
  std::vector<RoundResult> out;
  out.reserve(static_cast<std::size_t>(rounds));
  const long base = engine_.rounds_completed();
  engine_.run(engine_.sync_scenario(rounds), [&](const StepResult& s) {
    out.push_back(to_round_result(s, base));
  });
  return out;
}

std::vector<AsyncRoundResult> FederatedSim::run_async(
    long aggregations, std::vector<AsyncDeletion> deletions) {
  std::vector<AsyncRoundResult> out;
  out.reserve(static_cast<std::size_t>(aggregations));
  engine_.run(engine_.async_scenario(aggregations, std::move(deletions)),
              [&](const StepResult& s) { out.push_back(to_async_result(s)); });
  return out;
}

}  // namespace goldfish::fl
