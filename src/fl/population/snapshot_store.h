// Content-addressed model snapshot store (the population subsystem's dedup
// layer, docs/population.md).
//
// A federation at population scale holds many *identical* model replicas:
// every client that last downloaded broadcast version v references the same
// parameter values. Keying snapshots by a content hash of their serialized
// GFT1 bytes makes that sharing structural — interning the same parameters
// twice yields one stored buffer with a reference count of two, and the
// buffer is freed the moment the last reference drops (DeletionEvent
// commits release the departed client's reference; refcounts observably
// reach zero — tests/population_test.cpp pins this).
//
// Hashing is FNV-1a over the exact serialized bytes, so two snapshots
// collide only if they are bit-identical — which is precisely when they
// *should* dedupe. 64-bit hash collisions between different contents are
// handled by per-hash chaining (a Handle carries the chain slot), never by
// silent aliasing.
//
// Not thread-safe by design: the engine interns versions on the main thread
// at publish time (Phase B's aggregation loop) and commits references after
// the run — the same single-threaded seams the rest of the durable state
// uses.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace goldfish::fl::population {

class SnapshotStore {
 public:
  /// An owning reference to one stored snapshot. Valueless (valid == false)
  /// by default; copyable — copies share the reference they name, so every
  /// acquire() must be balanced by exactly one release().
  struct Handle {
    std::uint64_t hash = 0;
    std::uint32_t slot = 0;  ///< index in the hash's collision chain
    bool valid = false;
  };

  /// Intern `params`: serialize, hash, and either bump the existing entry's
  /// refcount or store one new deduped buffer. The returned handle owns one
  /// reference (release it when done).
  Handle intern(const std::vector<Tensor>& params);

  /// Add one reference to an interned snapshot.
  void acquire(const Handle& h);

  /// Drop one reference; the stored bytes are freed when the count reaches
  /// zero. No-op for an invalid handle.
  void release(const Handle& h);

  /// Decode the referenced snapshot back into tensors.
  std::vector<Tensor> materialize(const Handle& h) const;

  /// The raw serialized bytes of the referenced snapshot.
  const std::string& bytes(const Handle& h) const;

  /// Current reference count of `h` (0 for invalid or released handles).
  long refcount(const Handle& h) const;

  /// Number of distinct snapshots currently stored.
  std::size_t unique_snapshots() const { return live_entries_; }
  /// Bytes held by stored snapshots (deduped, not per-reference).
  std::size_t stored_bytes() const { return stored_bytes_; }
  /// Outstanding references across all snapshots.
  std::size_t total_references() const { return refs_total_; }
  /// Lifetime intern() calls — with unique_snapshots(), the dedup hit rate.
  std::size_t interned_total() const { return interned_total_; }

 private:
  struct Entry {
    std::string data;
    long refs = 0;
  };

  const Entry& entry_at(const Handle& h) const;

  // Ordered map (never unordered: DET003) keyed by the content hash; each
  // value chains the astronomically-rare distinct contents sharing a hash.
  std::map<std::uint64_t, std::vector<Entry>> entries_;
  std::size_t live_entries_ = 0;
  std::size_t stored_bytes_ = 0;
  std::size_t refs_total_ = 0;
  std::size_t interned_total_ = 0;
  std::string scratch_;  ///< intern() serialization buffer, capacity reused
};

}  // namespace goldfish::fl::population
