// Wire-policy example: the same federation under four upload encodings.
//
// Every client upload travels through a WirePolicy — encoded to real bytes,
// shipped, decoded server-side before aggregation. This demo runs one
// buffered-async scenario four times, changing only the wire:
//   * dense          byte-true float32, bit-exact (the null-wire default),
//   * quantized      int8 affine per tensor, ~4x fewer bytes,
//   * delta+topk     top-k sparsified update deltas, ~5x fewer bytes,
//   * delta+quant    quantized deltas under a bandwidth-aware clock, where
//                    upload time = bytes / per-client link speed — so the
//                    smaller payload finishes the same schedule sooner.
// StepResult reports the per-update payload (upload_bytes) and, for lossy
// wires, the mean relative L2 reconstruction error (encode_error). Each
// configuration is still bit-identical at any thread count.
//
// Run: ./build/examples/compressed_uploads
//
// The delta+topk row shows why aggressive sparsification is a trade, not a
// free win: with no error feedback it lags hardest early in training.
#include <iostream>
#include <memory>
#include <string>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/simulation.h"
#include "metrics/report.h"
#include "nn/models.h"

namespace {

struct WireRun {
  std::string wire;
  std::size_t upload_bytes = 0;
  double encode_error = 0.0;
  double virtual_time = 0.0;
  double accuracy = 0.0;
};

}  // namespace

int main() {
  using namespace goldfish;
  std::cout << "== Compressed uploads demo ==\n";

  auto tt = data::make_synthetic(
      data::default_spec(data::DatasetKind::Mnist, /*seed=*/70,
                         /*train=*/1200, /*test=*/300));
  Rng rng(71);
  auto clients = data::partition_iid(tt.train, 8, rng);

  fl::FlConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 50;
  cfg.local.lr = 0.05f;
  cfg.async.duration_log_jitter = 0.5;

  auto run_with = [&](std::unique_ptr<fl::WirePolicy> wire,
                      bool bandwidth_clock) {
    Rng mrng(72);  // fresh identical model per run: only the wire differs
    nn::Model global = nn::make_mlp(tt.train.geom, 16, 10, mrng);
    fl::FederatedSim sim(global, clients, tt.test, cfg);

    fl::Scenario s = sim.engine().async_scenario(12);
    if (wire) s.wire = std::move(wire);
    if (bandwidth_clock) {
      // Compute time as before, plus bytes / link-speed per upload. Links
      // are a seeded log-normal around 2 MB per virtual time unit.
      s.clock = std::make_unique<fl::BandwidthClock>(
          std::make_unique<fl::VirtualClock>(cfg.seed, 1.0,
                                             cfg.async.duration_log_jitter),
          /*mean_bandwidth=*/2.0e6, /*log_spread=*/0.3, cfg.seed);
    }

    WireRun out;
    out.wire = s.wire ? s.wire->name() : "dense";
    sim.engine().run(std::move(s), [&](const fl::StepResult& r) {
      out.upload_bytes = r.upload_bytes;
      out.encode_error = r.encode_error;
      out.virtual_time = r.virtual_time;
      out.accuracy = r.global_accuracy;
    });
    return out;
  };

  std::cout << "8 clients, 12 buffered-async aggregations per run\n\n"
            << "wire                 bytes/update  vs dense  encode err  "
               "t(final)  accuracy\n";
  const WireRun dense = run_with(nullptr, false);
  WireRun runs[] = {
      dense,
      run_with(std::make_unique<fl::QuantizedWire>(), false),
      run_with(std::make_unique<fl::DeltaWire>(
                   std::make_unique<fl::TopKWire>(0.1)),
               false),
      run_with(std::make_unique<fl::DeltaWire>(
                   std::make_unique<fl::QuantizedWire>()),
               /*bandwidth_clock=*/true),
  };
  for (const auto& r : runs) {
    const double pct = 100.0 * double(r.upload_bytes) / double(dense.upload_bytes);
    std::cout << "  " << r.wire << std::string(r.wire.size() < 19 ? 19 - r.wire.size() : 1, ' ')
              << r.upload_bytes << "        " << metrics::fmt(pct, 1) << "%    "
              << metrics::fmt(r.encode_error, 4) << "      "
              << metrics::fmt(r.virtual_time, 2) << "     "
              << metrics::fmt(r.accuracy) << "%\n";
  }

  std::cout << "\ndense ships " << dense.upload_bytes
            << " bytes per update; int8 quantization cuts that ~4x at "
               "matching accuracy,\nand top-k delta sparsification ~5x "
               "(lossy — it lags early in training).\nThe last row prices "
               "uploads on a bandwidth clock: same schedule, fewer bytes,\n"
            << "earlier finish than dense would get under the same links.\n";
  return 0;
}
