// Lightweight contract checking used across the library.
//
// Follows the C++ Core Guidelines (I.6/E.12): precondition violations are
// programming errors surfaced as exceptions carrying enough context to debug,
// so a bad shape in a test or bench fails loudly instead of corrupting memory.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace goldfish {

/// Thrown whenever a GOLDFISH_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace goldfish

/// Precondition check. Always on (the library is not perf-bound on checks):
///   GOLDFISH_CHECK(a.rows() == b.rows(), "matmul shape mismatch");
#define GOLDFISH_CHECK(expr, ...)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::goldfish::detail::check_failed(#expr, __FILE__, __LINE__,       \
                                       ::std::string{__VA_ARGS__});     \
    }                                                                   \
  } while (false)
