# Empty dependencies file for bench_table3_6_acc_backdoor.
# This may be replaced when dependencies are built.
