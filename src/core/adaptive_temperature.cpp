#include "core/adaptive_temperature.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace goldfish::core {

float AdaptiveTemperature::operator()(long remaining_size,
                                      long removed_size) const {
  GOLDFISH_CHECK(remaining_size >= 0 && removed_size >= 0,
                 "negative dataset size");
  GOLDFISH_CHECK(remaining_size + removed_size > 0, "empty client dataset");
  const float frac = static_cast<float>(remaining_size) /
                     static_cast<float>(remaining_size + removed_size);
  const float t = alpha * t0 * std::exp(-frac);
  return std::max(t, min_temperature);
}

}  // namespace goldfish::core
