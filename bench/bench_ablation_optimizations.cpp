// Extra ablation (DESIGN.md §5): what do the optimization/extension modules
// buy? Toggles early termination (Eq. 7) and adaptive temperature (Eq. 11)
// inside Goldfish unlearning and reports local epochs spent, accuracy,
// backdoor ASR, and a membership-inference audit on the removed rows.
// Not a paper table — it quantifies design choices the paper motivates
// qualitatively.
#include "bench/common.h"
#include "metrics/membership_inference.h"

int main() {
  using namespace goldfish;
  using namespace goldfish::bench;
  print_header("ablation: early termination & adaptive temperature");

  Scenario s = make_scenario(data::DatasetKind::Mnist, 0.10f, 13000);
  const long rounds = metrics::full_scale() ? 6 : 3;

  struct Config {
    const char* label;
    bool early;
    bool adaptive_t;
    float delta;
  };
  const std::vector<Config> configs = {
      {"no early term, fixed T", false, false, 0.0f},
      {"early term (d=0.3), fixed T", true, false, 0.3f},
      {"no early term, adaptive T", false, true, 0.0f},
      {"early term + adaptive T", true, true, 0.3f},
  };

  metrics::TableReporter table(
      "Optimization/extension ablation (MNIST, 10% deletion)",
      {"config", "epochs spent", "early stops", "acc%", "ASR%", "MIA AUC"});

  for (const Config& c : configs) {
    core::UnlearnConfig cfg;
    cfg.distill.max_epochs = s.prof.local_epochs + 3;
    cfg.distill.batch_size = s.prof.batch;
    cfg.distill.lr = s.prof.lr;
    cfg.distill.use_early_termination = c.early;
    cfg.distill.delta = c.delta;
    cfg.distill.use_adaptive_temperature = c.adaptive_t;
    core::GoldfishUnlearner ul(s.trained, s.fresh, s.parts, s.tt.test, cfg);
    ul.request_deletion({{0, s.poisoned_rows}});
    long epochs = 0, stops = 0;
    for (const auto& r : ul.run(rounds)) {
      epochs += r.total_epochs_run;
      stops += r.clients_terminated_early;
    }
    nn::Model& m = ul.global_model();
    const auto mia = metrics::membership_inference(
        m, ul.removed_data(0), s.tt.test);
    table.add_row({c.label, std::to_string(epochs), std::to_string(stops),
                   metrics::fmt(metrics::accuracy(m, s.tt.test)),
                   metrics::fmt(metrics::attack_success_rate(m, s.probe)),
                   metrics::fmt(mia.auc)});
  }
  table.print();
  table.write_csv(csv_dir() + "/ablation_optimizations.csv");
  return 0;
}
